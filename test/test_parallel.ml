(* Tests for the domain pool and the domain-safety of the simulator:
   ordering and exception contracts of Pool.map, nested use, engines
   running concurrently on separate domains, and byte-identical figure
   output whatever the domain count. *)

module Pool = Mdds_parallel.Pool
module Engine = Mdds_sim.Engine
module Rng = Mdds_sim.Rng
module Figures = Mdds_harness.Figures

(* ------------------------------------------------------------------ *)
(* Pool.map contracts.                                                  *)

let test_map_ordering () =
  let xs = List.init 200 Fun.id in
  let f x = (x * x) + 7 in
  Alcotest.(check (list int)) "matches List.map" (List.map f xs)
    (Pool.map ~domains:7 f xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 f []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~domains:4 f [ 0 ]);
  Alcotest.(check (list int)) "more domains than elements"
    (List.map f [ 1; 2; 3 ])
    (Pool.map ~domains:16 f [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "domains=0 falls back to sequential"
    (List.map f xs) (Pool.map ~domains:0 f xs)

let test_map_exception () =
  let f x = if x = 57 || x = 80 then failwith (Printf.sprintf "boom%d" x) else x in
  (match Pool.map ~domains:4 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m ->
      (* The smallest failing index wins: the exception a sequential
         List.map would have raised. *)
      Alcotest.(check string) "smallest failing index" "boom57" m);
  (* The pool stays usable after a failure. *)
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 4 ]
    (Pool.map ~domains:2 (fun x -> 2 * x) [ 1; 2 ])

let test_map_nested () =
  (* A map inside a pool worker must not spawn recursively; it degrades to
     a sequential map with identical results. *)
  let inner x = Pool.map ~domains:2 (fun y -> (x * 10) + y) [ 1; 2; 3 ] in
  Alcotest.(check (list (list int))) "nested map"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ] ]
    (Pool.map ~domains:2 inner [ 1; 2; 3 ])

let test_jobs_knob () =
  Pool.set_jobs (Some 3);
  Alcotest.(check int) "set_jobs wins" 3 (Pool.get_jobs ());
  Pool.set_jobs (Some 0);
  Alcotest.(check int) "clamped to 1" 1 (Pool.get_jobs ());
  Pool.set_jobs None;
  Alcotest.(check bool) "default is positive" true (Pool.get_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Engines on separate domains.                                         *)

(* One self-contained trial: processes, sleeps and RNG draws, returning a
   digest of everything the engine did. Pure function of the seed. *)
let engine_trial seed =
  let engine = Engine.create ~seed () in
  let rng = Engine.rng engine in
  let acc = ref 0 in
  for _i = 1 to 50 do
    Engine.spawn engine (fun () ->
        Engine.sleep (Rng.float rng 1.0);
        acc := !acc + Rng.int rng 1000;
        Engine.yield ();
        acc := !acc + 1)
  done;
  Engine.run engine;
  (!acc, Engine.now engine, Engine.processed engine)

let test_engines_in_domains () =
  let seq1 = engine_trial 1 and seq2 = engine_trial 2 in
  let d1 = Domain.spawn (fun () -> engine_trial 1) in
  let d2 = Domain.spawn (fun () -> engine_trial 2) in
  let par1 = Domain.join d1 and par2 = Domain.join d2 in
  Alcotest.(check bool) "seed 1 unaffected by concurrent engine" true (seq1 = par1);
  Alcotest.(check bool) "seed 2 unaffected by concurrent engine" true (seq2 = par2);
  (* And through the pool, which also interleaves with the caller domain. *)
  let pooled = Pool.map ~domains:4 engine_trial [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "pooled trials = sequential trials" true
    (pooled = List.map engine_trial [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Byte-identical figures.                                              *)

let with_captured_stdout f =
  let tmp = Filename.temp_file "mdds_parallel" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f;
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let test_figures_byte_identical () =
  (* A full figure (both protocols, four topologies) on a reduced seed set,
     rendered with one domain and with four: the printed tables must match
     byte for byte. *)
  let render jobs =
    Pool.set_jobs (Some jobs);
    Fun.protect
      ~finally:(fun () -> Pool.set_jobs None)
      (fun () -> with_captured_stdout (fun () -> Figures.fig4a ~seeds:[ 5 ] ()))
  in
  let seq = render 1 in
  let par = render 4 in
  Alcotest.(check bool) "figure actually rendered" true (String.length seq > 100);
  Alcotest.(check string) "jobs=1 and jobs=4 tables identical" seq par

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "exception propagation" `Quick test_map_exception;
          Alcotest.test_case "nested use" `Quick test_map_nested;
          Alcotest.test_case "jobs knob" `Quick test_jobs_knob;
        ] );
      ( "engines",
        [ Alcotest.test_case "independent engines per domain" `Quick test_engines_in_domains ] );
      ( "figures",
        [ Alcotest.test_case "byte-identical output" `Slow test_figures_byte_identical ] );
    ]
