(* Tests for the serializability theory: the SCSV history tester and the
   log-based one-copy serializability checker. *)

module History = Mdds_serial.History
module Checker = Mdds_serial.Checker
module Txn = Mdds_types.Txn

(* ------------------------------------------------------------------ *)
(* History (conflict serializability).                                  *)

let step txn action = { History.txn; action }

let test_history_serializable () =
  (* t1 then t2 on the same key, cleanly ordered. *)
  let schedule =
    [
      step "t1" (History.Write "x");
      step "t2" (History.Read "x");
      step "t2" (History.Write "y");
    ]
  in
  Alcotest.(check bool) "serializable" true (History.conflict_serializable schedule);
  match History.serial_order schedule with
  | Some [ "t1"; "t2" ] -> ()
  | Some other -> Alcotest.failf "order: %s" (String.concat "," other)
  | None -> Alcotest.fail "no order"

let test_history_lost_update_cycle () =
  (* Classic lost update: both read x, then both write x. *)
  let schedule =
    [
      step "t1" (History.Read "x");
      step "t2" (History.Read "x");
      step "t1" (History.Write "x");
      step "t2" (History.Write "x");
    ]
  in
  Alcotest.(check bool) "not serializable" false (History.conflict_serializable schedule);
  Alcotest.(check bool) "no serial order" true (History.serial_order schedule = None)

let test_history_read_read_no_conflict () =
  let schedule = [ step "t1" (History.Read "x"); step "t2" (History.Read "x") ] in
  Alcotest.(check (list (pair string string))) "no edges" [] (History.conflict_edges schedule);
  Alcotest.(check bool) "serializable" true (History.conflict_serializable schedule)

let test_history_edges () =
  let schedule =
    [ step "t1" (History.Write "x"); step "t2" (History.Read "x"); step "t2" (History.Write "x") ]
  in
  let edges = History.conflict_edges schedule in
  Alcotest.(check bool) "t1->t2 edge" true (List.mem ("t1", "t2") edges);
  Alcotest.(check bool) "no self edges" true
    (List.for_all (fun (a, b) -> a <> b) edges)

let prop_serial_schedules_serializable =
  let open QCheck in
  let action_gen =
    Gen.(
      map2
        (fun read key -> if read then History.Read key else History.Write key)
        bool
        (oneofl [ "x"; "y"; "z" ]))
  in
  let txns_gen =
    Gen.(
      list_size (1 -- 6)
        (pair (map (Printf.sprintf "t%d") nat) (list_size (1 -- 4) action_gen)))
  in
  Test.make ~name:"back-to-back execution is always serializable" ~count:300
    (make txns_gen)
    (fun txns ->
      (* Deduplicate ids to keep transactions distinct. *)
      let txns = List.mapi (fun i (id, ops) -> (Printf.sprintf "%s_%d" id i, ops)) txns in
      History.conflict_serializable (History.of_serial txns))

(* ------------------------------------------------------------------ *)
(* History equivalence: the per-key-indexed graph build must agree with
   the old full-suffix-scan reference — same edges in the same order,
   same witness order, same verdict. *)

let ref_conflicting a b =
  History.(
    (match a with Read k | Write k -> k) = (match b with Read k | Write k -> k))
  && match (a, b) with History.Read _, History.Read _ -> false | _ -> true

let ref_conflict_edges schedule =
  let rec go acc = function
    | [] -> acc
    | (s : History.step) :: rest ->
        let acc =
          List.fold_left
            (fun acc (s' : History.step) ->
              if s'.History.txn <> s.History.txn && ref_conflicting s.History.action s'.History.action
              then
                let edge = (s.History.txn, s'.History.txn) in
                if List.mem edge acc then acc else edge :: acc
              else acc)
            acc rest
        in
        go acc rest
  in
  List.rev (go [] schedule)

let ref_txns schedule =
  List.fold_left
    (fun acc (s : History.step) ->
      if List.mem s.History.txn acc then acc else s.History.txn :: acc)
    [] schedule
  |> List.rev

let ref_serial_order schedule =
  let nodes = ref_txns schedule in
  let edges = ref_conflict_edges schedule in
  let in_degree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_degree n 0) nodes;
  List.iter
    (fun (_, dst) -> Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst + 1))
    edges;
  let rec go acc remaining edges =
    match List.find_opt (fun n -> Hashtbl.find in_degree n = 0) remaining with
    | None -> if remaining = [] then Some (List.rev acc) else None
    | Some n ->
        let outgoing, rest = List.partition (fun (src, _) -> src = n) edges in
        List.iter
          (fun (_, dst) ->
            Hashtbl.replace in_degree dst (Hashtbl.find in_degree dst - 1))
          outgoing;
        go (n :: acc) (List.filter (fun m -> m <> n) remaining) rest
  in
  go [] nodes edges

let schedule_gen =
  let open QCheck.Gen in
  let step_gen =
    map3
      (fun t read key ->
        step (Printf.sprintf "t%d" t)
          (if read then History.Read key else History.Write key))
      (0 -- 5) bool
      (oneofl [ "a"; "b"; "c"; "d" ])
  in
  list_size (0 -- 30) step_gen

let prop_history_matches_reference =
  QCheck.Test.make
    ~name:"indexed conflict graph matches the O(S^2) reference (edges, order, verdict)"
    ~count:500
    (QCheck.make schedule_gen)
    (fun schedule ->
      History.txns schedule = ref_txns schedule
      && History.conflict_edges schedule = ref_conflict_edges schedule
      && History.serial_order schedule = ref_serial_order schedule)

(* ------------------------------------------------------------------ *)
(* Checker.                                                             *)

let record ?(reads = []) ?(writes = []) ~rp txn_id =
  Txn.make_record ~txn_id ~origin:0 ~read_position:rp ~reads
    ~writes:(List.map (fun (key, value) -> { Txn.key; value }) writes)

let ok_log =
  [
    (1, [ record "t1" ~rp:0 ~writes:[ ("x", "1"); ("y", "1") ] ]);
    (2, [ record "t2" ~rp:1 ~reads:[ "x" ] ~writes:[ ("x", "2") ] ]);
    (* combined entry: t4 does not read what t3 wrote *)
    ( 3,
      [
        record "t3" ~rp:2 ~reads:[ "x" ] ~writes:[ ("y", "3") ];
        record "t4" ~rp:2 ~reads:[ "x" ] ~writes:[ ("z", "3") ];
      ] );
    (* promoted transaction: rp=2, commits at 4, reads z?? no: reads x
       which was last written at 2 <= rp. *)
    (4, [ record "t5" ~rp:2 ~reads:[ "x" ] ~writes:[ ("w", "4") ] ]);
  ]

let test_check_log_ok () =
  match Checker.check_log ok_log with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "unexpected violation: %s"
        (Format.asprintf "%a" Checker.pp_violation v)

let test_check_log_stale_read () =
  let log =
    [
      (1, [ record "t1" ~rp:0 ~writes:[ ("x", "1") ] ]);
      (* t2 read at position 0 but x was overwritten at 1 before its slot. *)
      (2, [ record "t2" ~rp:0 ~reads:[ "x" ] ~writes:[ ("y", "2") ] ]);
    ]
  in
  match Checker.check_log log with
  | Error { txn_id = "t2"; position = 2; _ } -> ()
  | Error v -> Alcotest.failf "wrong violation: %s" (Format.asprintf "%a" Checker.pp_violation v)
  | Ok () -> Alcotest.fail "stale read not detected"

let test_check_log_intra_entry () =
  (* Within one entry, a later record reading an earlier record's write is
     a violation of the combination rule. *)
  let log =
    [
      ( 1,
        [
          record "t1" ~rp:0 ~writes:[ ("x", "1") ];
          record "t2" ~rp:0 ~reads:[ "x" ];
        ] );
    ]
  in
  match Checker.check_log log with
  | Error { txn_id = "t2"; _ } -> ()
  | _ -> Alcotest.fail "intra-entry stale read not detected"

let test_replay_values () =
  let observed = function
    | "t2" -> Some [ ("x", Some "1") ]
    | "t5" -> Some [ ("x", Some "2") ]
    | _ -> Some []
  in
  (match Checker.replay ok_log ~observed with
  | Ok () -> ()
  | Error v -> Alcotest.failf "replay: %s" (Format.asprintf "%a" Checker.pp_violation v));
  (* A wrong observed value is caught. *)
  let observed = function "t2" -> Some [ ("x", Some "stale") ] | _ -> None in
  match Checker.replay ok_log ~observed with
  | Error { txn_id = "t2"; _ } -> ()
  | _ -> Alcotest.fail "wrong value not detected"

let test_replay_initial_none () =
  let log = [ (1, [ record "t1" ~rp:0 ~reads:[ "q" ] ~writes:[ ("q", "1") ] ]) ] in
  let observed = function "t1" -> Some [ ("q", None) ] | _ -> None in
  (match Checker.replay log ~observed with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "initial None mismatch");
  let observed = function "t1" -> Some [ ("q", Some "ghost") ] | _ -> None in
  match Checker.replay log ~observed with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "phantom initial value accepted"

let test_unique_ids () =
  (match Checker.unique_txn_ids ok_log with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unique ids rejected");
  let log = [ (1, [ record "t1" ~rp:0 ]); (2, [ record "t1" ~rp:1 ]) ] in
  match Checker.unique_txn_ids log with
  | Error { txn_id = "t1"; position = 2; _ } -> ()
  | _ -> Alcotest.fail "duplicate id not detected"

let test_check_audit () =
  let log = [ (1, [ record "t1" ~rp:0 ~writes:[ ("x", "1") ] ]) ] in
  (match Checker.check_audit ~log ~committed:[ ("t1", 1) ] ~aborted:[ "t9" ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "honest audit rejected");
  (match Checker.check_audit ~log ~committed:[ ("t2", 1) ] ~aborted:[] with
  | Error { txn_id = "t2"; _ } -> ()
  | _ -> Alcotest.fail "phantom commit not detected");
  (match Checker.check_audit ~log ~committed:[ ("t1", 3) ] ~aborted:[] with
  | Error { txn_id = "t1"; _ } -> ()
  | _ -> Alcotest.fail "wrong position not detected");
  match Checker.check_audit ~log ~committed:[] ~aborted:[ "t1" ] with
  | Error { txn_id = "t1"; _ } -> ()
  | _ -> Alcotest.fail "aborted-but-logged not detected"

let test_check_read_only () =
  let log =
    [
      (1, [ record "t1" ~rp:0 ~writes:[ ("x", "1") ] ]);
      (2, [ record "t2" ~rp:1 ~writes:[ ("x", "2") ] ]);
    ]
  in
  (* A reader at position 1 must see x=1; at 2, x=2; at 0, nothing. *)
  (match
     Checker.check_read_only log
       ~readers:
         [
           ("r0", 0, [ ("x", None) ]);
           ("r1", 1, [ ("x", Some "1") ]);
           ("r2", 2, [ ("x", Some "2") ]);
         ]
   with
  | Ok () -> ()
  | Error v -> Alcotest.failf "read-only: %s" (Format.asprintf "%a" Checker.pp_violation v));
  match Checker.check_read_only log ~readers:[ ("r1", 1, [ ("x", Some "2") ]) ] with
  | Error { txn_id = "r1"; _ } -> ()
  | _ -> Alcotest.fail "stale read-only not detected"

(* ------------------------------------------------------------------ *)
(* Mvmc: the definitional (Definition 1) decision procedure.             *)

module Mvmc = Mdds_serial.Mvmc

let mtxn id reads writes = { Mvmc.id; reads; writes }

let test_mvmc_witness () =
  (* w1 writes x; r reads x from w1: witness must place w1 before r. *)
  let txns = [ mtxn "r" [ ("x", Some "w1") ] []; mtxn "w1" [] [ "x" ] ] in
  (match Mvmc.one_copy_serializable txns with
  | Some order ->
      let pos id = Option.get (List.find_index (String.equal id) order) in
      Alcotest.(check bool) "writer first" true (pos "w1" < pos "r")
  | None -> Alcotest.fail "serializable history rejected");
  (* Reading the initial version forces r before w1. *)
  let txns = [ mtxn "r" [ ("x", None) ] []; mtxn "w1" [] [ "x" ] ] in
  match Mvmc.one_copy_serializable txns with
  | Some order ->
      let pos id = Option.get (List.find_index (String.equal id) order) in
      Alcotest.(check bool) "reader first" true (pos "r" < pos "w1")
  | None -> Alcotest.fail "initial-version read rejected"

let test_mvmc_not_serializable () =
  (* Classic write-skew-like contradiction: t1 reads initial x but must
     follow t2 (reads t2's y), while t2 reads initial y but must follow
     t1 (reads t1's x) — no serial order satisfies both. *)
  let txns =
    [
      mtxn "t1" [ ("x", None); ("y", Some "t2") ] [ "x" ];
      mtxn "t2" [ ("y", None); ("x", Some "t1") ] [ "y" ];
    ]
  in
  Alcotest.(check bool) "cycle rejected" true
    (Mvmc.one_copy_serializable txns = None)

let test_mvmc_validation () =
  Alcotest.check_raises "unknown writer"
    (Invalid_argument "Mvmc: t reads from unknown transaction ghost") (fun () ->
      ignore (Mvmc.one_copy_serializable [ mtxn "t" [ ("x", Some "ghost") ] [] ]));
  Alcotest.check_raises "non-writer"
    (Invalid_argument "Mvmc: t reads x from w, which never writes it") (fun () ->
      ignore
        (Mvmc.one_copy_serializable
           [ mtxn "t" [ ("x", Some "w") ] []; mtxn "w" [] [ "y" ] ]));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Mvmc: duplicate transaction id d") (fun () ->
      ignore (Mvmc.one_copy_serializable [ mtxn "d" [] []; mtxn "d" [] [] ]))

let test_mvmc_of_log () =
  let txns = Mvmc.of_log ok_log in
  (* t2 read x from t1 (written at 1, read position 1). *)
  let t2 = List.find (fun t -> t.Mvmc.id = "t2") txns in
  Alcotest.(check bool) "reads-from derived" true
    (t2.Mvmc.reads = [ ("x", Some "t1") ]);
  match Mvmc.one_copy_serializable txns with
  | Some _ -> ()
  | None -> Alcotest.fail "honest log rejected by Definition 1"

let prop_checker_agrees_with_definition =
  (* Cross-validation of the practical oracle against the definitional
     procedure: every honest serial log accepted by check_log is 1SR by
     Definition 1. *)
  let open QCheck in
  let key_gen = Gen.oneofl [ "x"; "y"; "z" ] in
  let log_gen =
    Gen.(list_size (1 -- 6) (pair (list_size (0 -- 2) key_gen) (list_size (0 -- 2) key_gen)))
  in
  Test.make ~name:"check_log-accepted logs satisfy Definition 1" ~count:200
    (make log_gen)
    (fun txns ->
      let log =
        List.mapi
          (fun i (reads, writes) ->
            ( i + 1,
              [
                record (Printf.sprintf "t%d" i) ~rp:i ~reads
                  ~writes:(List.map (fun k -> (k, string_of_int i)) writes);
              ] ))
          txns
      in
      match Checker.check_log log with
      | Error _ -> true (* not applicable *)
      | Ok () -> Mvmc.one_copy_serializable (Mvmc.of_log log) <> None)

(* ------------------------------------------------------------------ *)
(* Cross-validation: logs that pass check_log are conflict-serializable
   in the SCSV sense when projected to a schedule in log order. *)

let prop_checked_logs_serializable =
  let open QCheck in
  let key_gen = Gen.oneofl [ "x"; "y"; "z" ] in
  let log_gen =
    (* Build an honest log: transactions execute serially, each reading at
       the previous position. This must pass both checkers. *)
    Gen.(
      list_size (1 -- 10) (pair (list_size (0 -- 2) key_gen) (list_size (0 -- 2) key_gen)))
  in
  Test.make ~name:"honest serial logs pass check_log and are serializable" ~count:200
    (make log_gen)
    (fun txns ->
      let log =
        List.mapi
          (fun i (reads, writes) ->
            ( i + 1,
              [
                record (Printf.sprintf "t%d" i) ~rp:i ~reads
                  ~writes:(List.map (fun k -> (k, string_of_int i)) writes);
              ] ))
          txns
      in
      (match Checker.check_log log with Ok () -> true | Error _ -> false)
      &&
      let schedule =
        List.concat_map
          (fun (_, entry) ->
            List.concat_map
              (fun (r : Txn.record) ->
                List.map (fun k -> step r.txn_id (History.Read k)) (Txn.read_set r)
                @ List.map (fun k -> step r.txn_id (History.Write k)) (Txn.write_set r))
              entry)
          log
      in
      History.conflict_serializable schedule)

(* ------------------------------------------------------------------ *)
(* Checker verdict equivalence: check_log now walks the footprint's
   deduped arrays; the reference below re-derives the sets with the old
   list code. Random logs (honest and corrupted alike) must get the same
   verdict — including the same flagged key in the same message. *)

let ref_check_log log =
  let ref_read_set (r : Txn.record) = List.sort_uniq String.compare r.Txn.reads in
  let ref_write_set (r : Txn.record) =
    List.sort_uniq String.compare (List.map (fun w -> w.Txn.key) r.Txn.writes)
  in
  let last_write : (Txn.key, int * string) Hashtbl.t = Hashtbl.create 256 in
  let rec entries = function
    | [] -> Ok ()
    | (pos, entry) :: rest ->
        let rec records = function
          | [] -> entries rest
          | (r : Txn.record) :: more -> (
              let stale =
                List.find_opt
                  (fun key ->
                    match Hashtbl.find_opt last_write key with
                    | Some (wpos, _) when wpos > r.Txn.read_position -> true
                    | _ -> false)
                  (ref_read_set r)
              in
              match stale with
              | Some key ->
                  let wpos, writer = Hashtbl.find last_write key in
                  Error
                    {
                      Checker.txn_id = r.Txn.txn_id;
                      position = pos;
                      message =
                        Printf.sprintf
                          "stale read of %s: wrote at position %d by %s, read \
                           position %d"
                          key wpos writer r.Txn.read_position;
                    }
              | None ->
                  List.iter
                    (fun key -> Hashtbl.replace last_write key (pos, r.Txn.txn_id))
                    (ref_write_set r);
                  records more)
        in
        records entry
  in
  entries log

let prop_check_log_matches_reference =
  let open QCheck in
  let key_gen = Gen.oneofl [ "x"; "y"; "z" ] in
  let log_gen =
    (* Arbitrary read positions: many of these logs contain genuine stale
       reads, so both the Ok and the Error (message included) paths are
       compared. *)
    Gen.(
      list_size (1 -- 8)
        (triple (int_bound 8) (list_size (0 -- 3) key_gen) (list_size (0 -- 3) key_gen)))
  in
  Test.make ~name:"check_log verdicts match the list-based reference" ~count:500
    (make log_gen)
    (fun txns ->
      let log =
        List.mapi
          (fun i (rp, reads, writes) ->
            ( i + 1,
              [
                record (Printf.sprintf "t%d" i) ~rp ~reads
                  ~writes:(List.map (fun k -> (k, string_of_int i)) writes);
              ] ))
          txns
      in
      Checker.check_log log = ref_check_log log)

let () =
  Alcotest.run "serial"
    [
      ( "history",
        [
          Alcotest.test_case "serializable" `Quick test_history_serializable;
          Alcotest.test_case "lost update cycle" `Quick test_history_lost_update_cycle;
          Alcotest.test_case "read-read no conflict" `Quick test_history_read_read_no_conflict;
          Alcotest.test_case "edges" `Quick test_history_edges;
          QCheck_alcotest.to_alcotest prop_serial_schedules_serializable;
          QCheck_alcotest.to_alcotest prop_history_matches_reference;
        ] );
      ( "checker",
        [
          Alcotest.test_case "valid log passes" `Quick test_check_log_ok;
          Alcotest.test_case "stale read detected" `Quick test_check_log_stale_read;
          Alcotest.test_case "intra-entry rule" `Quick test_check_log_intra_entry;
          Alcotest.test_case "replay values" `Quick test_replay_values;
          Alcotest.test_case "replay initial state" `Quick test_replay_initial_none;
          Alcotest.test_case "unique ids" `Quick test_unique_ids;
          Alcotest.test_case "audit honesty" `Quick test_check_audit;
          Alcotest.test_case "read-only transactions" `Quick test_check_read_only;
          QCheck_alcotest.to_alcotest prop_checked_logs_serializable;
          QCheck_alcotest.to_alcotest prop_check_log_matches_reference;
        ] );
      ( "mvmc",
        [
          Alcotest.test_case "witness order" `Quick test_mvmc_witness;
          Alcotest.test_case "non-serializable rejected" `Quick test_mvmc_not_serializable;
          Alcotest.test_case "validation" `Quick test_mvmc_validation;
          Alcotest.test_case "of_log" `Quick test_mvmc_of_log;
          QCheck_alcotest.to_alcotest prop_checker_agrees_with_definition;
        ] );
    ]
