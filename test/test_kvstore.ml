(* Tests for the multi-version key-value store (the §2.2 contract). *)

module Row = Mdds_kvstore.Row
module Store = Mdds_kvstore.Store

let value v = [ ("v", v) ]

let read_attr store key =
  match Store.read store ~key () with
  | None -> None
  | Some (_, attrs) -> Row.attribute attrs "v"

(* ------------------------------------------------------------------ *)
(* Row.                                                                 *)

let test_row_versions () =
  let row = Row.create () in
  Alcotest.(check bool) "no versions" true (Row.latest row = None);
  Alcotest.(check bool) "auto ts 1" true (Row.write row (value "a") = Ok 1);
  Alcotest.(check bool) "auto ts 2" true (Row.write row (value "b") = Ok 2);
  Alcotest.(check int) "count" 2 (Row.version_count row);
  match Row.latest row with
  | Some (2, attrs) -> Alcotest.(check (option string)) "latest" (Some "b") (Row.attribute attrs "v")
  | _ -> Alcotest.fail "latest"

let test_row_read_at_timestamp () =
  let row = Row.create () in
  ignore (Row.write row ~timestamp:10 (value "ten"));
  ignore (Row.write row ~timestamp:20 (value "twenty"));
  let at ts =
    match Row.read row ~timestamp:ts () with
    | None -> None
    | Some (_, attrs) -> Row.attribute attrs "v"
  in
  Alcotest.(check (option string)) "before first" None (at 9);
  Alcotest.(check (option string)) "exactly first" (Some "ten") (at 10);
  Alcotest.(check (option string)) "between" (Some "ten") (at 15);
  Alcotest.(check (option string)) "at second" (Some "twenty") (at 20);
  Alcotest.(check (option string)) "after" (Some "twenty") (at 99)

let test_row_stale_write () =
  let row = Row.create () in
  ignore (Row.write row ~timestamp:5 (value "x"));
  Alcotest.(check bool) "stale rejected" true (Row.write row ~timestamp:3 (value "y") = Error `Stale);
  (* Same timestamp overwrites (idempotent log re-apply). *)
  Alcotest.(check bool) "same ts ok" true (Row.write row ~timestamp:5 (value "z") = Ok 5);
  Alcotest.(check int) "no duplicate version" 1 (Row.version_count row)

let test_row_normalize () =
  let v = Row.normalize [ ("b", "1"); ("a", "2"); ("b", "3") ] in
  Alcotest.(check (list (pair string string))) "sorted, last wins"
    [ ("a", "2"); ("b", "3") ] v;
  (* Pin the full contract: sorted by attribute name, exactly one binding
     per name, and that binding is the textually last one in the input. *)
  Alcotest.(check (list (pair string string))) "empty" [] (Row.normalize []);
  Alcotest.(check (list (pair string string))) "singleton"
    [ ("x", "1") ] (Row.normalize [ ("x", "1") ]);
  Alcotest.(check (list (pair string string))) "all duplicates keep last"
    [ ("k", "4") ]
    (Row.normalize [ ("k", "1"); ("k", "2"); ("k", "3"); ("k", "4") ]);
  Alcotest.(check (list (pair string string))) "interleaved"
    [ ("a", "5"); ("b", "4"); ("c", "3") ]
    (Row.normalize [ ("a", "1"); ("b", "2"); ("c", "3"); ("b", "4"); ("a", "5") ])

(* Reference implementation of the normalize contract (the original
   quadratic walk); the optimized version must agree on any input. *)
let reference_normalize value =
  let rec keep_last seen = function
    | [] -> []
    | (k, v) :: rest ->
        if List.mem k seen then keep_last seen rest
        else (k, v) :: keep_last (k :: seen) rest
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (keep_last [] (List.rev value))

let prop_normalize_matches_reference =
  QCheck.Test.make ~name:"normalize agrees with the reference dedup" ~count:500
    QCheck.(
      list (pair (string_of_size Gen.(1 -- 4)) (string_of_size Gen.(0 -- 3))))
    (fun value -> Row.normalize value = reference_normalize value)

(* ------------------------------------------------------------------ *)
(* Store.                                                               *)

let test_store_basic () =
  let store = Store.create () in
  Alcotest.(check bool) "missing row" true (Store.read store ~key:"k" () = None);
  ignore (Store.write store ~key:"k" (value "v1"));
  Alcotest.(check (option string)) "read back" (Some "v1") (read_attr store "k");
  Alcotest.(check (option string)) "attribute" (Some "v1") (Store.attribute store ~key:"k" "v");
  Alcotest.(check (option string)) "missing attribute" None (Store.attribute store ~key:"k" "w");
  Alcotest.(check int) "row count" 1 (Store.row_count store);
  Alcotest.(check (list string)) "keys" [ "k" ] (Store.keys store)

let test_store_versioned_reads () =
  let store = Store.create () in
  ignore (Store.write store ~key:"k" ~timestamp:1 (value "a"));
  ignore (Store.write store ~key:"k" ~timestamp:3 (value "b"));
  (match Store.read store ~key:"k" ~timestamp:2 () with
  | Some (1, attrs) ->
      Alcotest.(check (option string)) "snapshot" (Some "a") (Row.attribute attrs "v")
  | _ -> Alcotest.fail "versioned read");
  Alcotest.(check bool) "stale" true (Store.write store ~key:"k" ~timestamp:2 (value "c") = Error `Stale)

let test_check_and_write () =
  let store = Store.create () in
  (* Missing row: test against None succeeds (create). *)
  Alcotest.(check bool) "create when absent" true
    (Store.check_and_write store ~key:"p" ~test_attribute:"nb" ~test_value:None
       [ ("nb", "1"); ("vote", "a") ]);
  (* Wrong expectation fails and writes nothing. *)
  Alcotest.(check bool) "wrong expectation" false
    (Store.check_and_write store ~key:"p" ~test_attribute:"nb" ~test_value:(Some "9")
       [ ("nb", "2") ]);
  Alcotest.(check (option string)) "unchanged" (Some "1") (Store.attribute store ~key:"p" "nb");
  (* Correct expectation succeeds. *)
  Alcotest.(check bool) "correct expectation" true
    (Store.check_and_write store ~key:"p" ~test_attribute:"nb" ~test_value:(Some "1")
       [ ("nb", "2"); ("vote", "b") ]);
  Alcotest.(check (option string)) "updated" (Some "2") (Store.attribute store ~key:"p" "nb");
  Alcotest.(check (option string)) "other attribute too" (Some "b")
    (Store.attribute store ~key:"p" "vote");
  (* Absent attribute on an existing row equals None. *)
  ignore (Store.write store ~key:"q" [ ("other", "x") ]);
  Alcotest.(check bool) "absent attr is None" true
    (Store.check_and_write store ~key:"q" ~test_attribute:"nb" ~test_value:None
       [ ("nb", "0") ])

let test_store_reset () =
  let store = Store.create () in
  ignore (Store.write store ~key:"k" (value "v"));
  Store.reset store;
  Alcotest.(check int) "empty after reset" 0 (Store.row_count store)

(* ------------------------------------------------------------------ *)
(* Durability: write buffer, sync points, dirty and torn crashes.       *)

let explicit () = Store.create ~mode:Store.Sync_explicit ()

let mangle_checksum store key =
  (* Forge torn damage: rewrite the row's latest version with a checksum
     that cannot match its body. [Row.restore] bypasses the write buffer,
     exactly like a disk sector going bad behind the store's back. *)
  let row = Store.row store ~key in
  match Row.versions row with
  | (ts, v) :: rest ->
      Row.restore row ((ts, ("#sum", "00000000") :: List.remove_assoc "#sum" v) :: rest)
  | [] -> Alcotest.failf "no versions to mangle at %s" key

let test_sync_always_crash_noop () =
  (* Default mode: every write is durable as it lands, crash loses
     nothing — the pre-existing behaviour every figure run relies on. *)
  let store = Store.create () in
  ignore (Store.write store ~key:"k" (value "v1"));
  Alcotest.(check int) "nothing ever buffered" 0 (Store.unsynced store);
  Store.crash store ~lose_unsynced:true;
  Alcotest.(check (option string)) "write survives" (Some "v1") (read_attr store "k");
  Store.crash ~torn:true store ~lose_unsynced:true;
  Alcotest.(check (option string)) "torn arm is a no-op too" (Some "v1")
    (read_attr store "k")

let test_dirty_crash_rewinds_to_sync_point () =
  let store = explicit () in
  ignore (Store.write store ~key:"k" (value "durable"));
  Store.sync store;
  ignore (Store.write store ~key:"k" (value "buffered"));
  ignore (Store.write store ~key:"fresh" (value "new"));
  (* Buffered writes are visible immediately (page-cache semantics). *)
  Alcotest.(check (option string)) "buffered visible" (Some "buffered") (read_attr store "k");
  Alcotest.(check int) "two dirty keys" 2 (Store.unsynced store);
  Store.crash store ~lose_unsynced:true;
  Alcotest.(check (option string)) "rewound to sync point" (Some "durable")
    (read_attr store "k");
  Alcotest.(check bool) "never-synced row gone" true
    (Store.read store ~key:"fresh" () = None);
  Alcotest.(check int) "buffer empty after crash" 0 (Store.unsynced store)

let test_sync_point_makes_durable () =
  let store = explicit () in
  ignore (Store.write store ~key:"k" (value "v"));
  Store.sync store;
  Alcotest.(check int) "buffer drained" 0 (Store.unsynced store);
  Store.crash store ~lose_unsynced:true;
  Alcotest.(check (option string)) "synced write survives" (Some "v") (read_attr store "k")

let test_crash_keeping_buffer () =
  (* lose_unsynced:false models the OS flushing before the process died:
     the buffer contents survive even without an explicit sync. *)
  let store = explicit () in
  ignore (Store.write store ~key:"k" (value "v"));
  Store.crash store ~lose_unsynced:false;
  Alcotest.(check (option string)) "flushed buffer survives" (Some "v")
    (read_attr store "k");
  (* The flush was real: a later dirty crash no longer loses it. *)
  Store.crash store ~lose_unsynced:true;
  Alcotest.(check (option string)) "now durable" (Some "v") (read_attr store "k")

let test_delete_rolls_back () =
  let store = explicit () in
  ignore (Store.write store ~key:"k" (value "keep"));
  Store.sync store;
  Store.delete store ~key:"k";
  Alcotest.(check bool) "delete visible" true (Store.read store ~key:"k" () = None);
  Store.crash store ~lose_unsynced:true;
  Alcotest.(check (option string)) "unsynced delete undone" (Some "keep")
    (read_attr store "k")

let test_torn_crash_persists_prefix () =
  let store = explicit () in
  ignore (Store.write store ~key:"k" [ ("a", "old"); ("b", "old"); ("c", "old") ]);
  Store.sync store;
  ignore (Store.write store ~key:"k" [ ("a", "new"); ("b", "new"); ("c", "new") ]);
  Store.crash ~torn:true store ~lose_unsynced:true;
  (* The in-flight write persisted a strict prefix of its attributes; the
     checksum no longer matches, so the tear is detectable. *)
  (match Store.read store ~key:"k" () with
  | None -> Alcotest.fail "torn version missing entirely"
  | Some (_, attrs) ->
      Alcotest.(check bool) "torn version detectable" false (Store.checksum_valid attrs);
      Alcotest.(check bool) "strictly fewer attributes" true
        (List.length attrs < 4 (* a b c + #sum *)));
  let dropped = Store.scrub store ~key:"k" in
  Alcotest.(check int) "scrub drops the torn version" 1 dropped;
  (match Store.read store ~key:"k" () with
  | Some (_, attrs) ->
      Alcotest.(check bool) "survivor checksums" true (Store.checksum_valid attrs);
      Alcotest.(check (option string)) "survivor is the synced version" (Some "old")
        (Row.attribute attrs "a")
  | None -> Alcotest.fail "synced version lost by scrub")

let test_torn_crash_on_created_row_stays_absent () =
  (* A torn write of a row that never reached a sync point models the row
     write itself never reaching the disk: the row must stay absent. *)
  let store = explicit () in
  ignore (Store.write store ~key:"fresh" [ ("a", "1"); ("b", "2") ]);
  Store.crash ~torn:true store ~lose_unsynced:true;
  Alcotest.(check bool) "created row absent after torn crash" true
    (Store.read store ~key:"fresh" () = None)

let test_scrub_drops_forged_damage () =
  let store = explicit () in
  ignore (Store.write store ~key:"k" (value "good"));
  Store.sync store;
  ignore (Store.write store ~key:"k" (value "bad"));
  Store.sync store;
  mangle_checksum store "k";
  Alcotest.(check int) "one version dropped" 1 (Store.scrub store ~key:"k");
  Alcotest.(check (option string)) "valid predecessor restored" (Some "good")
    (read_attr store "k");
  (* A row whose every version is damaged disappears entirely. *)
  ignore (Store.write store ~key:"solo" (value "x"));
  Store.sync store;
  mangle_checksum store "solo";
  ignore (Store.scrub store ~key:"solo");
  Alcotest.(check bool) "fully damaged row deleted" true
    (Store.read store ~key:"solo" () = None)

let test_durable_versions_oracle () =
  let store = explicit () in
  ignore (Store.write store ~key:"k" ~timestamp:1 (value "durable"));
  Store.sync store;
  ignore (Store.write store ~key:"k" ~timestamp:2 (value "buffered"));
  (* The oracle previews the post-crash state without mutating. *)
  (match Store.durable_versions store ~key:"k" with
  | [ (1, attrs) ] ->
      Alcotest.(check (option string)) "durable version only" (Some "durable")
        (Row.attribute attrs "v")
  | other -> Alcotest.failf "unexpected durable view (%d versions)" (List.length other));
  Alcotest.(check (option string)) "store unchanged by the oracle" (Some "buffered")
    (read_attr store "k");
  Alcotest.(check int) "buffer unchanged by the oracle" 1 (Store.unsynced store);
  (* And it agrees with an actual crash. *)
  Store.crash store ~lose_unsynced:true;
  Alcotest.(check (option string)) "crash matches the preview" (Some "durable")
    (read_attr store "k")

(* ------------------------------------------------------------------ *)
(* Properties.                                                          *)

let prop_monotonic_read =
  (* Reading at timestamp t always returns the write with the greatest
     timestamp <= t. *)
  QCheck.Test.make ~name:"read returns latest version <= timestamp" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 20) (int_bound 50)) (int_bound 60))
    (fun (timestamps, probe) ->
      let store = Store.create () in
      let applied =
        List.filter
          (fun ts ->
            ts > 0
            && Store.write store ~key:"k" ~timestamp:ts (value (string_of_int ts)) = Ok ts)
          timestamps
      in
      let expected =
        List.fold_left
          (fun acc ts -> if ts <= probe then max acc ts else acc)
          0 applied
      in
      match Store.read store ~key:"k" ~timestamp:probe () with
      | None -> expected = 0
      | Some (ts, attrs) ->
          ts = expected && Row.attribute attrs "v" = Some (string_of_int expected))

let prop_check_and_write_atomic =
  (* check_and_write succeeds iff the expectation matched, and on success
     the new value is visible. *)
  QCheck.Test.make ~name:"check_and_write success implies visibility" ~count:200
    QCheck.(list (pair (option (int_bound 3)) (int_bound 9)))
    (fun steps ->
      let store = Store.create () in
      List.for_all
        (fun (expect, next) ->
          let expect = Option.map string_of_int expect in
          let current = Store.attribute store ~key:"r" "nb" in
          let ok =
            Store.check_and_write store ~key:"r" ~test_attribute:"nb"
              ~test_value:expect
              [ ("nb", string_of_int next) ]
          in
          if current = expect then
            ok && Store.attribute store ~key:"r" "nb" = Some (string_of_int next)
          else (not ok) && Store.attribute store ~key:"r" "nb" = current)
        steps)

let () =
  Alcotest.run "kvstore"
    [
      ( "row",
        [
          Alcotest.test_case "versions" `Quick test_row_versions;
          Alcotest.test_case "read at timestamp" `Quick test_row_read_at_timestamp;
          Alcotest.test_case "stale write" `Quick test_row_stale_write;
          Alcotest.test_case "normalize" `Quick test_row_normalize;
        ] );
      ( "store",
        [
          Alcotest.test_case "basic" `Quick test_store_basic;
          Alcotest.test_case "versioned reads" `Quick test_store_versioned_reads;
          Alcotest.test_case "check_and_write" `Quick test_check_and_write;
          Alcotest.test_case "reset" `Quick test_store_reset;
        ] );
      ( "durability",
        [
          Alcotest.test_case "Sync_always crash is a no-op" `Quick
            test_sync_always_crash_noop;
          Alcotest.test_case "dirty crash rewinds to sync point" `Quick
            test_dirty_crash_rewinds_to_sync_point;
          Alcotest.test_case "sync makes writes durable" `Quick
            test_sync_point_makes_durable;
          Alcotest.test_case "crash keeping the buffer" `Quick
            test_crash_keeping_buffer;
          Alcotest.test_case "unsynced delete rolls back" `Quick
            test_delete_rolls_back;
          Alcotest.test_case "torn crash persists a detectable prefix" `Quick
            test_torn_crash_persists_prefix;
          Alcotest.test_case "torn created row stays absent" `Quick
            test_torn_crash_on_created_row_stays_absent;
          Alcotest.test_case "scrub repairs forged damage" `Quick
            test_scrub_drops_forged_damage;
          Alcotest.test_case "durable_versions oracle" `Quick
            test_durable_versions_oracle;
        ] );
      ( "props",
        [
          QCheck_alcotest.to_alcotest prop_monotonic_read;
          QCheck_alcotest.to_alcotest prop_check_and_write_atomic;
          QCheck_alcotest.to_alcotest prop_normalize_matches_reference;
        ] );
    ]
