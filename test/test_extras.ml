(* Tests for the supporting extensions: the trace subsystem, the
   application-level retry runner, the Zipfian key distribution — and
   mutation tests proving the serializability oracle actually catches
   corrupted executions. *)

module Engine = Mdds_sim.Engine
module Trace = Mdds_sim.Trace
module Rng = Mdds_sim.Rng
module Cluster = Mdds_core.Cluster
module Client = Mdds_core.Client
module Config = Mdds_core.Config
module Audit = Mdds_core.Audit
module Runner = Mdds_core.Runner
module Verify = Mdds_core.Verify
module Service = Mdds_core.Service
module Wal = Mdds_wal.Wal
module Txn = Mdds_types.Txn
module Distribution = Mdds_workload.Distribution
module Topology = Mdds_net.Topology

let group = "g"

(* ------------------------------------------------------------------ *)
(* Trace.                                                               *)

let test_trace_disabled_by_default () =
  let engine = Engine.create () in
  let trace = Trace.create engine in
  Alcotest.(check bool) "disabled" false (Trace.enabled trace);
  Trace.record trace ~source:"s" ~category:"c" "dropped %d" 1;
  Alcotest.(check int) "nothing recorded" 0 (Trace.total trace);
  Alcotest.(check (list string)) "no events" []
    (List.map (fun e -> e.Trace.message) (Trace.events trace))

let test_trace_records_in_order () =
  let engine = Engine.create () in
  let trace = Trace.create engine in
  Trace.enable trace;
  Engine.spawn engine (fun () ->
      Trace.record trace ~source:"a" ~category:"x" "first";
      Engine.sleep 1.5;
      Trace.record trace ~source:"b" ~category:"y" "second");
  Engine.run engine;
  match Trace.events trace with
  | [ e1; e2 ] ->
      Alcotest.(check string) "msg1" "first" e1.Trace.message;
      Alcotest.(check (float 1e-9)) "time1" 0.0 e1.Trace.time;
      Alcotest.(check (float 1e-9)) "time2" 1.5 e2.Trace.time;
      Alcotest.(check string) "source2" "b" e2.Trace.source;
      Alcotest.(check int) "count x" 1 (Trace.count trace ~category:"x")
  | events -> Alcotest.failf "expected 2 events, got %d" (List.length events)

let test_trace_capacity_eviction () =
  let engine = Engine.create () in
  let trace = Trace.create ~capacity:3 engine in
  Trace.enable trace;
  for i = 1 to 5 do
    Trace.record trace ~source:"s" ~category:"c" "%d" i
  done;
  Alcotest.(check int) "total counts all" 5 (Trace.total trace);
  Alcotest.(check (list string)) "keeps most recent" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.message) (Trace.events trace));
  Alcotest.(check (list string)) "tail" [ "4"; "5" ]
    (List.map (fun e -> e.Trace.message) (Trace.tail trace 2));
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events trace))

let test_trace_protocol_events () =
  (* A traced cluster produces decide and commit events. *)
  let cluster = Cluster.create ~seed:3 (Topology.ec2 "VVV") in
  Trace.enable (Cluster.trace cluster);
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ client ~group in
      Client.write txn "k" "v";
      ignore (Client.commit txn));
  Cluster.run cluster;
  let trace = Cluster.trace cluster in
  Alcotest.(check bool) "decide traced" true (Trace.count trace ~category:"decide" > 0);
  Alcotest.(check bool) "commit traced" true (Trace.count trace ~category:"commit" > 0)

(* ------------------------------------------------------------------ *)
(* Runner.                                                              *)

let test_runner_commits_first_try () =
  let cluster = Cluster.create ~seed:5 (Topology.ec2 "VVV") in
  let client = Cluster.client cluster ~dc:0 in
  let outcome = ref None in
  Cluster.spawn cluster (fun () ->
      outcome :=
        Some (Runner.run client ~group (fun txn -> Client.write txn "k" "v")));
  Cluster.run cluster;
  match !outcome with
  | Some { Runner.final = Audit.Committed _; attempts = 1 } -> ()
  | _ -> Alcotest.fail "expected one-attempt commit"

let test_runner_retries_conflicts_to_success () =
  (* Two counters racing under *basic* Paxos: the retry loop must drive
     every increment to an eventual commit, and the final counter value
     must equal the number of increments — no lost updates, no double
     applications. *)
  let cluster = Cluster.create ~seed:11 ~config:Config.basic (Topology.ec2 "VVV") in
  let total_attempts = ref 0 and commits = ref 0 in
  let per_client = 6 in
  for dc = 0 to 1 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        for _ = 1 to per_client do
          let outcome =
            Runner.run client ~group ~max_attempts:20 (fun txn ->
                let v =
                  Option.fold ~none:0 ~some:int_of_string (Client.read txn "counter")
                in
                Client.write txn "counter" (string_of_int (v + 1)))
          in
          total_attempts := !total_attempts + outcome.Runner.attempts;
          match outcome.Runner.final with
          | Audit.Committed _ -> incr commits
          | _ -> Alcotest.fail "increment did not eventually commit"
        done)
  done;
  Cluster.run cluster;
  Verify.check_exn cluster ~group;
  Alcotest.(check int) "all increments committed" (2 * per_client) !commits;
  Alcotest.(check bool) "retries actually happened" true
    (!total_attempts > 2 * per_client);
  (* Read the final counter. *)
  let reader = Cluster.client cluster ~dc:2 in
  let final = ref None in
  Cluster.spawn cluster (fun () ->
      let txn = Client.begin_ reader ~group in
      final := Client.read txn "counter";
      ignore (Client.commit txn));
  Cluster.run cluster;
  Alcotest.(check (option string)) "counter equals increments"
    (Some (string_of_int (2 * per_client)))
    !final

let test_runner_gives_up_at_cap () =
  (* With everything down, the runner performs exactly max_attempts when
     asked to retry unavailability. *)
  let config = { Config.default with rpc_timeout = 0.2; max_rounds = 2; read_attempts = 1 } in
  let cluster = Cluster.create ~seed:2 ~config (Topology.ec2 "VVV") in
  Cluster.take_down cluster 1;
  Cluster.take_down cluster 2;
  let outcome = ref None in
  let client = Cluster.client cluster ~dc:0 in
  Cluster.spawn cluster (fun () ->
      outcome :=
        Some
          (Runner.run client ~group ~max_attempts:3 ~retry_unavailable:true
             (fun txn -> Client.write txn "k" "v")));
  Cluster.run ~until:600.0 cluster;
  match !outcome with
  | Some { Runner.final = Audit.Aborted { reason = Audit.Unavailable; _ }; attempts = 3 } -> ()
  | Some { Runner.attempts; _ } -> Alcotest.failf "attempts = %d" attempts
  | None -> Alcotest.fail "no outcome"

let test_runner_invalid () =
  let cluster = Cluster.create ~seed:1 (Topology.ec2 "VVV") in
  let client = Cluster.client cluster ~dc:0 in
  Alcotest.check_raises "max_attempts 0"
    (Invalid_argument "Runner.run: max_attempts must be >= 1") (fun () ->
      ignore (Runner.run client ~group ~max_attempts:0 (fun _ -> ())))

(* ------------------------------------------------------------------ *)
(* Distribution.                                                        *)

let test_distribution_uniform_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let i = Distribution.sample Distribution.Uniform rng 10 in
    if i < 0 || i >= 10 then Alcotest.failf "uniform out of range %d" i
  done

let test_distribution_zipfian_skew () =
  let rng = Rng.create 9 in
  let n = 100 and draws = 20_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let i = Distribution.sample (Distribution.Zipfian 0.99) rng n in
    if i < 0 || i >= n then Alcotest.failf "zipfian out of range %d" i;
    counts.(i) <- counts.(i) + 1
  done;
  (* The hottest key must be far above uniform share (draws/n = 200), and
     a large fraction of mass concentrated in few keys. *)
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  Alcotest.(check bool)
    (Printf.sprintf "hot key dominates (%d)" sorted.(0))
    true
    (sorted.(0) > 3 * draws / n);
  let top10 = Array.fold_left ( + ) 0 (Array.sub sorted 0 10) in
  Alcotest.(check bool)
    (Printf.sprintf "top-10 share (%d of %d)" top10 draws)
    true
    (top10 > draws * 45 / 100)

let test_distribution_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Distribution.sample: empty domain") (fun () ->
      ignore (Distribution.sample Distribution.Uniform rng 0));
  Alcotest.check_raises "bad theta"
    (Invalid_argument "Distribution.sample: theta must be in (0, 1)") (fun () ->
      ignore (Distribution.sample (Distribution.Zipfian 1.5) rng 10))

(* ------------------------------------------------------------------ *)
(* Oracle mutation tests: corrupt a healthy execution and require the
   verifier to notice. If these fail, every green integration test is
   meaningless.                                                         *)

let healthy_cluster () =
  let cluster = Cluster.create ~seed:13 (Topology.ec2 "VVV") in
  for dc = 0 to 2 do
    let client = Cluster.client cluster ~dc in
    Cluster.spawn cluster (fun () ->
        for i = 1 to 4 do
          let txn = Client.begin_ client ~group in
          ignore (Client.read txn (Printf.sprintf "k%d" dc));
          Client.write txn (Printf.sprintf "k%d" dc) (Printf.sprintf "%d-%d" dc i);
          ignore (Client.commit txn)
        done)
  done;
  Cluster.run cluster;
  Verify.check_exn cluster ~group;
  cluster

let expect_violation what cluster =
  match Verify.check cluster ~group with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "oracle missed: %s" what

let test_oracle_catches_log_divergence () =
  let cluster = healthy_cluster () in
  (* Overwrite one datacenter's copy of position 2 with a different
     entry, bypassing the protocol. *)
  let wal = Service.wal (Cluster.service cluster 1) in
  let store = Service.store (Cluster.service cluster 1) in
  Mdds_kvstore.Store.delete store ~key:(Printf.sprintf "log/%s/2" group);
  (* The raw delete went behind the WAL's decoded cache: drop it so the
     forged append below sees the corrupted durable state. *)
  Wal.invalidate wal;
  Wal.append wal ~group ~pos:2
    [
      Txn.make_record ~txn_id:"forged" ~origin:1 ~read_position:1 ~reads:[]
        ~writes:[ { Txn.key = "k1"; value = "forged" } ];
    ];
  expect_violation "diverged replica logs (R1)" cluster

let test_oracle_catches_duplicate_txn () =
  let cluster = healthy_cluster () in
  (* Copy position 1's entry into a fresh position at the head: the same
     transaction now occupies two slots (L2). *)
  let wal = Service.wal (Cluster.service cluster 0) in
  let entry = Option.get (Wal.entry wal ~group ~pos:1) in
  let head = Wal.last_position wal ~group in
  List.iter
    (fun dc ->
      Wal.append (Service.wal (Cluster.service cluster dc)) ~group ~pos:(head + 1) entry)
    [ 0; 1; 2 ];
  expect_violation "duplicated transaction (L2)" cluster

let test_oracle_catches_stale_read_entry () =
  let cluster = healthy_cluster () in
  (* Append, on every replica, a forged transaction whose read position
     predates a write to its read set (L3). *)
  let wal0 = Service.wal (Cluster.service cluster 0) in
  let head = Wal.last_position wal0 ~group in
  let forged =
    [
      Txn.make_record ~txn_id:"stale" ~origin:0 ~read_position:0
        ~reads:[ "k0" ] ~writes:[ { Txn.key = "z"; value = "1" } ];
    ]
  in
  List.iter
    (fun dc ->
      Wal.append (Service.wal (Cluster.service cluster dc)) ~group ~pos:(head + 1) forged)
    [ 0; 1; 2 ];
  expect_violation "stale read admitted (L3)" cluster

let test_oracle_catches_dishonest_outcome () =
  let cluster = healthy_cluster () in
  (* Report a commit that never reached any log. *)
  Audit.record (Cluster.audit cluster)
    {
      Audit.group;
      record =
        Txn.make_record ~txn_id:"phantom" ~origin:0 ~read_position:0 ~reads:[]
          ~writes:[ { Txn.key = "p"; value = "1" } ];
      observed = [];
      outcome = Audit.Committed { position = 1; promotions = 0; combined = false };
      began_at = 0.0;
      committed_at = 1.0;
      commit_started_at = 0.5;
      client_dc = 0;
      stats = Audit.no_stats;
    };
  expect_violation "phantom commit (L1)" cluster

let test_oracle_catches_wrong_observed_value () =
  let cluster = healthy_cluster () in
  (* Rewrite one audited event so the client claims to have read a value
     the serial execution never produced. *)
  let audit = Cluster.audit cluster in
  let tampered = Audit.create () in
  let corrupted = ref false in
  List.iter
    (fun (e : Audit.event) ->
      let e =
        if (not !corrupted) && e.observed <> [] then begin
          corrupted := true;
          { e with observed = List.map (fun (k, _) -> (k, Some "never-written")) e.observed }
        end
        else e
      in
      Audit.record tampered e)
    (Audit.events audit);
  if not !corrupted then Alcotest.fail "no event with reads to corrupt";
  (* Rebuild a cluster view with the tampered audit by verifying the
     tampered events against the same logs. *)
  let log = Cluster.committed_log cluster ~group in
  let observed_tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Audit.event) -> Hashtbl.replace observed_tbl e.record.txn_id e.observed)
    (Audit.events tampered);
  match Mdds_serial.Checker.replay log ~observed:(Hashtbl.find_opt observed_tbl) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oracle missed: corrupted observed value"

let () =
  Alcotest.run "extras"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "capacity eviction" `Quick test_trace_capacity_eviction;
          Alcotest.test_case "protocol events" `Quick test_trace_protocol_events;
        ] );
      ( "runner",
        [
          Alcotest.test_case "first-try commit" `Quick test_runner_commits_first_try;
          Alcotest.test_case "retries to success, no lost updates" `Quick
            test_runner_retries_conflicts_to_success;
          Alcotest.test_case "gives up at cap" `Quick test_runner_gives_up_at_cap;
          Alcotest.test_case "invalid arguments" `Quick test_runner_invalid;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "uniform range" `Quick test_distribution_uniform_range;
          Alcotest.test_case "zipfian skew" `Quick test_distribution_zipfian_skew;
          Alcotest.test_case "invalid" `Quick test_distribution_invalid;
        ] );
      ( "oracle-mutation",
        [
          Alcotest.test_case "log divergence (R1)" `Quick test_oracle_catches_log_divergence;
          Alcotest.test_case "duplicate transaction (L2)" `Quick test_oracle_catches_duplicate_txn;
          Alcotest.test_case "stale-read entry (L3)" `Quick test_oracle_catches_stale_read_entry;
          Alcotest.test_case "dishonest outcome (L1)" `Quick test_oracle_catches_dishonest_outcome;
          Alcotest.test_case "corrupted observed value" `Quick
            test_oracle_catches_wrong_observed_value;
        ] );
    ]
