(* Tests for transaction records, conflict predicates and codecs. *)

module Txn = Mdds_types.Txn
module Codec = Mdds_codec.Codec

let record ?(reads = []) ?(writes = []) ?(rp = 0) ?(origin = 0) txn_id =
  Txn.make_record ~txn_id ~origin ~read_position:rp ~reads
    ~writes:(List.map (fun (key, value) -> { Txn.key; value }) writes)

let test_sets () =
  let r = record "t" ~reads:[ "b"; "a"; "b" ] ~writes:[ ("y", "1"); ("x", "2"); ("y", "3") ] in
  Alcotest.(check (list string)) "read set dedup+sort" [ "a"; "b" ] (Txn.read_set r);
  Alcotest.(check (list string)) "write set dedup+sort" [ "x"; "y" ] (Txn.write_set r);
  Alcotest.(check bool) "not read-only" false (Txn.is_read_only r);
  Alcotest.(check bool) "read-only" true (Txn.is_read_only (record "q" ~reads:[ "a" ]));
  let e = [ record "a" ~writes:[ ("k1", "v") ]; record "b" ~writes:[ ("k2", "v") ] ] in
  Alcotest.(check (list string)) "entry write set" [ "k1"; "k2" ] (Txn.entry_write_set e)

let test_reads_from () =
  let s = record "s" ~writes:[ ("x", "1") ] in
  let t = record "t" ~reads:[ "x" ] in
  let u = record "u" ~reads:[ "y" ] ~writes:[ ("x", "2") ] in
  Alcotest.(check bool) "t reads from s" true (Txn.reads_from t s);
  Alcotest.(check bool) "u does not read from s" false (Txn.reads_from u s);
  Alcotest.(check bool) "write-write is not reads-from" false (Txn.reads_from u s);
  Alcotest.(check bool) "conflicts with any" true (Txn.conflicts_with_any t [ u; s ]);
  Alcotest.(check bool) "no conflict" false (Txn.conflicts_with_any u [ s ])

let test_valid_combination () =
  let w_x = record "w" ~writes:[ ("x", "1") ] in
  let r_x = record "r" ~reads:[ "x" ] in
  let r_y = record "ry" ~reads:[ "y" ] ~writes:[ ("z", "1") ] in
  Alcotest.(check bool) "empty" true (Txn.valid_combination []);
  Alcotest.(check bool) "singleton" true (Txn.valid_combination [ r_x ]);
  Alcotest.(check bool) "reader before writer ok" true (Txn.valid_combination [ r_x; w_x ]);
  Alcotest.(check bool) "reader after writer invalid" false (Txn.valid_combination [ w_x; r_x ]);
  Alcotest.(check bool) "independent" true (Txn.valid_combination [ w_x; r_y ]);
  (* Blind write after write is fine (no read involved). *)
  let w_x2 = record "w2" ~writes:[ ("x", "2") ] in
  Alcotest.(check bool) "write-write ok" true (Txn.valid_combination [ w_x; w_x2 ]);
  (* Chains: r reads x written by first element two steps earlier. *)
  Alcotest.(check bool) "transitively invalid" false
    (Txn.valid_combination [ w_x; r_y; r_x ])

let test_mem_entry () =
  let e = [ record "a"; record "b" ] in
  Alcotest.(check bool) "present" true (Txn.mem_entry ~txn_id:"b" e);
  Alcotest.(check bool) "absent" false (Txn.mem_entry ~txn_id:"c" e)

let test_equal_and_pp () =
  let a = record "t" ~reads:[ "x" ] ~writes:[ ("y", "1") ] ~rp:4 in
  let b = record "t" ~reads:[ "x" ] ~writes:[ ("y", "1") ] ~rp:4 in
  Alcotest.(check bool) "equal" true (Txn.equal_record a b);
  Alcotest.(check bool) "entry equal" true (Txn.equal_entry [ a ] [ b ]);
  Alcotest.(check bool) "differs on rp" false
    (Txn.equal_record a (record "t" ~reads:[ "x" ] ~writes:[ ("y", "1") ] ~rp:5));
  let s = Format.asprintf "%a" Txn.pp_record a in
  Alcotest.(check bool) "pp braces" true
    (String.length s > 0 && String.contains s '{');
  Alcotest.(check bool) "pp mentions id" true
    (String.length s >= 2 && String.sub s 1 1 = "t")

let record_gen =
  let open QCheck.Gen in
  let key = oneofl [ "a"; "b"; "c"; "d" ] in
  let* txn_id = map (Printf.sprintf "t%d") small_nat in
  let* origin = int_bound 4 in
  let* rp = int_bound 100 in
  let* reads = list_size (0 -- 4) key in
  let* writes = list_size (0 -- 4) (pair key (map string_of_int small_nat)) in
  return
    (Txn.make_record ~txn_id ~origin ~read_position:rp ~reads
       ~writes:(List.map (fun (key, value) -> { Txn.key; value }) writes))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"record/entry codec roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 5) record_gen))
    (fun entry ->
      let encoded = Codec.encode Txn.entry_codec entry in
      Txn.equal_entry (Codec.decode_exn Txn.entry_codec encoded) entry)

(* ------------------------------------------------------------------ *)
(* Footprint-vs-reference equivalence: the conflict predicates now run
   on interned sorted-array footprints; these reference implementations
   are the pre-footprint list-based definitions, kept here as the
   executable spec the fast versions must agree with everywhere. *)

let ref_read_set (r : Txn.record) = List.sort_uniq String.compare r.Txn.reads

let ref_write_set (r : Txn.record) =
  List.sort_uniq String.compare (List.map (fun w -> w.Txn.key) r.Txn.writes)

let ref_reads_from t s =
  let written = ref_write_set s in
  List.exists (fun k -> List.mem k written) (ref_read_set t)

let ref_conflicts_with_any t winners = List.exists (ref_reads_from t) winners

let ref_valid_combination entry =
  let rec go preceding_writes = function
    | [] -> true
    | (r : Txn.record) :: rest ->
        let stale =
          List.exists (fun k -> List.mem k preceding_writes) (ref_read_set r)
        in
        (not stale) && go (List.rev_append (ref_write_set r) preceding_writes) rest
  in
  go [] entry

let prop_sets_match_reference =
  QCheck.Test.make ~name:"footprint read/write sets match list reference" ~count:500
    (QCheck.make record_gen)
    (fun r ->
      Txn.read_set r = ref_read_set r
      && Txn.write_set r = ref_write_set r
      && Array.to_list (Txn.read_keys r) = ref_read_set r
      && Array.to_list (Txn.write_keys r) = ref_write_set r)

let prop_reads_from_matches_reference =
  QCheck.Test.make ~name:"footprint reads_from matches list reference" ~count:1000
    (QCheck.make QCheck.Gen.(pair record_gen record_gen))
    (fun (t, s) -> Txn.reads_from t s = ref_reads_from t s)

let prop_conflicts_matches_reference =
  QCheck.Test.make ~name:"footprint conflicts_with_any matches list reference"
    ~count:500
    (QCheck.make QCheck.Gen.(pair record_gen (list_size (0 -- 6) record_gen)))
    (fun (t, winners) ->
      Txn.conflicts_with_any t winners = ref_conflicts_with_any t winners)

let prop_valid_combination_matches_reference =
  QCheck.Test.make ~name:"footprint valid_combination matches list reference"
    ~count:1000
    (QCheck.make QCheck.Gen.(list_size (0 -- 6) record_gen))
    (fun entry -> Txn.valid_combination entry = ref_valid_combination entry)

let prop_footprint_decode_rebuild =
  (* The codec drops the footprint on encode and rebuilds it on decode:
     the decoded record's predicates must behave identically. *)
  QCheck.Test.make ~name:"decoded records carry equivalent footprints" ~count:300
    (QCheck.make QCheck.Gen.(pair record_gen record_gen))
    (fun (t, s) ->
      let roundtrip r =
        Codec.decode_exn Txn.record_codec (Codec.encode Txn.record_codec r)
      in
      let t' = roundtrip t and s' = roundtrip s in
      Txn.read_set t' = Txn.read_set t
      && Txn.write_set t' = Txn.write_set t
      && Txn.reads_from t' s' = Txn.reads_from t s)

let prop_combination_prefix_closed =
  (* Any prefix of a valid combination is itself valid. *)
  QCheck.Test.make ~name:"valid combinations are prefix-closed" ~count:300
    (QCheck.make QCheck.Gen.(list_size (0 -- 5) record_gen))
    (fun entry ->
      (not (Txn.valid_combination entry))
      ||
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | x :: rest -> List.rev acc :: prefixes (x :: acc) rest
      in
      List.for_all Txn.valid_combination (prefixes [] entry))

(* ------------------------------------------------------------------ *)
(* The sharded interner under concurrency: ids must be globally
   consistent — whichever domain interns a key first, every domain sees
   the same id, reverse lookup works, and no id is ever assigned twice. *)

let test_intern_cross_domain () =
  let n = 200 in
  let keys = Array.init n (Printf.sprintf "xdom-key-%d") in
  let before = Txn.Intern.count () in
  let intern_all order = Array.map (fun k -> (k, Txn.Intern.id k)) order in
  let reversed = Array.init n (fun i -> keys.(n - 1 - i)) in
  let evens_first =
    Array.init n (fun i ->
        keys.(if i < n / 2 then 2 * i else (2 * (i - (n / 2))) + 1))
  in
  (* Three domains race on the same fresh key set in different orders while
     the caller interns too; every key is contended at least once. *)
  let d1 = Domain.spawn (fun () -> intern_all keys) in
  let d2 = Domain.spawn (fun () -> intern_all reversed) in
  let d3 = Domain.spawn (fun () -> intern_all evens_first) in
  let here = intern_all keys in
  let views = [ here; Domain.join d1; Domain.join d2; Domain.join d3 ] in
  let canonical = Hashtbl.create n in
  Array.iter (fun (k, id) -> Hashtbl.replace canonical k id) here;
  List.iter
    (Array.iter (fun (k, id) ->
         Alcotest.(check int)
           (Printf.sprintf "id of %s consistent across domains" k)
           (Hashtbl.find canonical k) id))
    views;
  let distinct = Hashtbl.create n in
  Array.iter (fun (_, id) -> Hashtbl.replace distinct id ()) here;
  Alcotest.(check int) "no id assigned twice" n (Hashtbl.length distinct);
  Alcotest.(check int) "exactly n fresh ids minted" (before + n)
    (Txn.Intern.count ());
  Array.iter
    (fun (k, id) ->
      Alcotest.(check (option string)) "reverse lookup" (Some k)
        (Txn.Intern.name id))
    here

let raw_record_gen =
  (* Raw construction inputs (not a built record): the point of the
     cross-domain property is that make_record — and hence interning —
     happens on the spawned domain. A wide key pool keeps a fresh-intern
     mix in every run alongside re-interned keys. *)
  let open QCheck.Gen in
  let key = map (Printf.sprintf "xq%d") (int_bound 60) in
  let* txn_id = map (Printf.sprintf "t%d") small_nat in
  let* reads = list_size (0 -- 4) key in
  let* writes = list_size (0 -- 4) (pair key (map string_of_int small_nat)) in
  return (txn_id, reads, writes)

let prop_cross_domain_footprints =
  QCheck.Test.make ~name:"footprints built on different domains intersect correctly"
    ~count:50
    (QCheck.make QCheck.Gen.(pair raw_record_gen raw_record_gen))
    (fun (a, b) ->
      let build (txn_id, reads, writes) =
        Txn.make_record ~txn_id ~origin:0 ~read_position:0 ~reads
          ~writes:(List.map (fun (key, value) -> { Txn.key; value }) writes)
      in
      let d1 = Domain.spawn (fun () -> build a) in
      let d2 = Domain.spawn (fun () -> build b) in
      let t = Domain.join d1 and s = Domain.join d2 in
      Txn.reads_from t s = ref_reads_from t s
      && Txn.reads_from s t = ref_reads_from s t
      && Txn.conflicts_with_any t [ s ] = ref_conflicts_with_any t [ s ]
      && Txn.valid_combination [ t; s ] = ref_valid_combination [ t; s ])

let () =
  Alcotest.run "types"
    [
      ( "txn",
        [
          Alcotest.test_case "read/write sets" `Quick test_sets;
          Alcotest.test_case "reads_from" `Quick test_reads_from;
          Alcotest.test_case "valid_combination" `Quick test_valid_combination;
          Alcotest.test_case "mem_entry" `Quick test_mem_entry;
          Alcotest.test_case "equality and printing" `Quick test_equal_and_pp;
        ] );
      ( "props",
        [
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_combination_prefix_closed;
        ] );
      ( "footprint-equivalence",
        [
          QCheck_alcotest.to_alcotest prop_sets_match_reference;
          QCheck_alcotest.to_alcotest prop_reads_from_matches_reference;
          QCheck_alcotest.to_alcotest prop_conflicts_matches_reference;
          QCheck_alcotest.to_alcotest prop_valid_combination_matches_reference;
          QCheck_alcotest.to_alcotest prop_footprint_decode_rebuild;
        ] );
      ( "intern-sharded",
        [
          Alcotest.test_case "cross-domain id consistency" `Quick
            test_intern_cross_domain;
          QCheck_alcotest.to_alcotest prop_cross_domain_footprints;
        ] );
    ]
