(* Command-line interface to the simulated multi-datacenter datastore.

   mdds run      — run one experiment with explicit parameters
   mdds figures  — reproduce figures from the paper's evaluation
   mdds list     — list available figure reproductions
   mdds chaos    — randomized fault-injection runs with oracle checking *)

module Config = Mdds_core.Config
module Experiment = Mdds_harness.Experiment
module Figures = Mdds_harness.Figures
module Stats = Mdds_harness.Stats
module Table = Mdds_harness.Table
module Ycsb = Mdds_workload.Ycsb
open Cmdliner

(* ------------------------------------------------------------------ *)
(* mdds run                                                            *)

let jobs_arg =
  let doc =
    "Run independent trials (figure cells, chaos seeds) on $(docv) domains. \
     Defaults to $(b,MDDS_JOBS) if set, else the machine's recommended \
     domain count. Output is byte-identical whatever the value."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "MDDS_JOBS") ~doc)

let verbose_arg =
  let doc =
    "After the run, print domain-pool scheduler statistics (tasks per \
     domain, busy/idle time, batches) and the combination planner's \
     budget-cutover count on stderr. Stdout is unaffected, so output \
     stays byte-comparable."
  in
  Arg.(value & flag & info [ "verbose" ] ~doc)

let print_scheduler_stats () =
  Mdds_parallel.Pool.pp_stats Format.err_formatter (Mdds_parallel.Pool.stats ());
  Format.eprintf "combine: %d budget cutovers to greedy@."
    (Mdds_core.Combine.cutovers ())

let topology_arg =
  let doc =
    "Datacenter spec: one character per datacenter, V = Virginia AZ, O = \
     Oregon, C = N. California (e.g. VVV, COV, VVVOC)."
  in
  Arg.(value & opt string "VVV" & info [ "t"; "topology" ] ~docv:"SPEC" ~doc)

let protocol_arg =
  let doc = "Commit protocol: 'paxos' (basic), 'cp' (Paxos-CP) or 'leader'." in
  let proto =
    Arg.enum
      [
        ("paxos", Config.Basic);
        ("basic", Config.Basic);
        ("cp", Config.Cp);
        ("leader", Config.Leader);
        (* Display names, so printed repro commands paste back verbatim. *)
        ("paxos-basic", Config.Basic);
        ("paxos-cp", Config.Cp);
      ]
  in
  Arg.(value & opt proto Config.Cp & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")

let txns_arg =
  Arg.(value & opt int 500 & info [ "n"; "txns" ] ~docv:"N" ~doc:"Total transactions.")

let threads_arg =
  Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Concurrent worker threads.")

let rate_arg =
  Arg.(value & opt float 1.0 & info [ "rate" ] ~docv:"TPS" ~doc:"Target txns/s per thread.")

let attributes_arg =
  Arg.(value & opt int 100 & info [ "attributes" ] ~docv:"N" ~doc:"Entity-group attributes.")

let ops_arg =
  Arg.(value & opt int 10 & info [ "ops" ] ~docv:"N" ~doc:"Operations per transaction.")

let loss_arg =
  Arg.(value & opt float 0.002 & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")

let no_fast_arg =
  Arg.(value & flag & info [ "no-fast-path" ] ~doc:"Disable the leader fast path.")

let no_combination_arg =
  Arg.(value & flag & info [ "no-combination" ] ~doc:"Disable Paxos-CP combination.")

let max_promotions_arg =
  let doc = "Cap promotions (default: unlimited)." in
  Arg.(value & opt (some int) None & info [ "max-promotions" ] ~docv:"N" ~doc)

let trace_arg =
  Arg.(value & opt (some int) None
       & info [ "trace" ] ~docv:"N"
           ~doc:"Print the last N protocol trace events after the run.")

let run_cmd =
  let run topology protocol seed txns threads rate attributes ops loss no_fast
      no_combination max_promotions trace =
    let config =
      {
        Config.default with
        protocol;
        enable_fast_path = not no_fast;
        enable_combination = not no_combination;
        max_promotions;
      }
    in
    let workload =
      { Ycsb.default with total_txns = txns; threads; rate; attributes; ops_per_txn = ops }
    in
    let spec = Experiment.spec ~seed ~config ~workload ~loss topology in
    (match trace with
    | None -> ()
    | Some n ->
        (* Re-run the workload on a dedicated traced cluster first: the
           Experiment runner owns its own cluster. *)
        let cluster =
          Mdds_core.Cluster.create ~seed ~config (Mdds_net.Topology.ec2 ~loss topology)
        in
        Mdds_sim.Trace.enable (Mdds_core.Cluster.trace cluster);
        ignore (Ycsb.run cluster workload);
        Mdds_core.Cluster.run cluster;
        List.iter
          (fun e -> Format.printf "%a@." Mdds_sim.Trace.pp_event e)
          (Mdds_sim.Trace.tail (Mdds_core.Cluster.trace cluster) n));
    let result = Experiment.run spec in
    Format.printf "%a@." Experiment.pp_brief result;
    let rows =
      Array.to_list result.commits_by_round
      |> List.mapi (fun round commits ->
             [
               string_of_int round;
               string_of_int commits;
               (if round < Array.length result.latency_by_round then
                  Table.fmt_ms result.latency_by_round.(round).Stats.mean
                else "-");
             ])
      |> List.filter (fun row -> row <> [])
    in
    Table.print ~header:[ "promotions"; "commits"; "mean latency (ms)" ] rows;
    match result.verified with
    | Ok () -> ()
    | Error _ -> exit 1
  in
  let term =
    Term.(
      const run $ topology_arg $ protocol_arg $ seed_arg $ txns_arg $ threads_arg
      $ rate_arg $ attributes_arg $ ops_arg $ loss_arg $ no_fast_arg
      $ no_combination_arg $ max_promotions_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload experiment and print its outcome profile.")
    term

(* ------------------------------------------------------------------ *)
(* mdds chaos                                                          *)

let chaos_cmd =
  let module Schedule = Mdds_chaos.Schedule in
  let module Runner = Mdds_chaos.Runner in
  let module Shrink = Mdds_chaos.Shrink in
  let seeds_conv =
    let parse s =
      let fail () =
        Error (`Msg (Printf.sprintf "bad seed range %S (expected A..B with A <= B)" s))
      in
      match String.index_opt s '.' with
      | Some i when i > 0 && i + 2 < String.length s && s.[i + 1] = '.' -> (
          let a = String.sub s 0 i in
          let b = String.sub s (i + 2) (String.length s - i - 2) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when a <= b ->
              Ok (List.init (b - a + 1) (fun k -> a + k))
          | _ -> fail ())
      | _ -> fail ()
    in
    let print ppf = function
      | [] -> ()
      | seeds ->
          Format.fprintf ppf "%d..%d" (List.hd seeds)
            (List.nth seeds (List.length seeds - 1))
    in
    Arg.conv (parse, print)
  in
  let seeds_arg =
    let doc = "Run a seed range, e.g. '1..20' (overrides --seed)." in
    Arg.(value & opt (some seeds_conv) None & info [ "seeds" ] ~docv:"A..B" ~doc)
  in
  let duration_arg =
    Arg.(
      value & opt float 20.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Fault-injection window (virtual seconds); healing starts here.")
  in
  let kinds_conv =
    let parse s =
      try
        Ok
          (String.split_on_char ',' s
          |> List.map String.trim
          |> List.filter (fun k -> k <> "")
          |> List.map Schedule.kind_of_string)
      with Invalid_argument m -> Error (`Msg m)
    in
    let print ppf ks =
      Format.pp_print_string ppf
        (String.concat "," (List.map Schedule.kind_to_string ks))
    in
    Arg.conv (parse, print)
  in
  let faults_arg =
    let doc =
      "Comma-separated fault kinds to draw from: crash, restart, \
       dirty-crash, torn-write, partition, storm, compact, one-way-cut, \
       slow-node, flap, dup-storm (default: all)."
    in
    Arg.(
      value & opt (some kinds_conv) None & info [ "faults" ] ~docv:"KINDS" ~doc)
  in
  let schedule_conv =
    let parse s =
      try Ok (Schedule.of_string s) with Invalid_argument m -> Error (`Msg m)
    in
    let print ppf t = Format.pp_print_string ppf (Schedule.to_string t) in
    Arg.conv (parse, print)
  in
  let schedule_arg =
    let doc =
      "Replay this exact fault schedule (s-expression printed by a failing \
       run) instead of generating one."
    in
    Arg.(
      value
      & opt (some schedule_conv) None
      & info [ "schedule" ] ~docv:"SEXP" ~doc)
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"On an oracle violation, minimize the failing schedule and \
                print a replayable repro.")
  in
  let trace_tail_arg =
    Arg.(
      value & opt int 15
      & info [ "trace-tail" ] ~docv:"N"
          ~doc:"Trace events to print after a violation.")
  in
  let throughput_arg =
    Arg.(
      value & flag
      & info [ "throughput" ]
          ~doc:
            "Add the throughput schedule dimension: force the leader \
             protocol and draw batch_max/pipeline_depth/epoch_interval \
             per seed (DESIGN.md \xc2\xa714\xe2\x80\x93\xc2\xa715), so the soak \
             exercises batched, pipelined and epoch-sealed commit under \
             every fault kind.")
  in
  let groups_arg =
    Arg.(
      value & opt int 1
      & info [ "groups" ] ~docv:"N"
          ~doc:
            "Spread the workload over $(docv) independent transaction \
             groups (round-robin per thread).")
  in
  let cross_ratio_arg =
    Arg.(
      value & opt float 0.0
      & info [ "cross-ratio" ] ~docv:"R"
          ~doc:
            "Fraction of workload transactions that span two transaction \
             groups and commit with the multi-shot atomic commit \
             (PROTOCOL.md \xc2\xa710). Requires --groups >= 2; forces the \
             leader protocol; adds the mid-2pc fault kind to the default \
             schedule dimensions.")
  in
  let run topology protocol seed seeds duration faults explicit_schedule
      shrink trace_tail throughput groups cross_ratio jobs verbose =
    Mdds_parallel.Pool.set_jobs jobs;
    let seeds = match seeds with None -> [ seed ] | Some s -> s in
    if groups < 1 then (
      Format.eprintf "mdds: --groups must be positive@.";
      exit 124);
    if cross_ratio < 0.0 || cross_ratio > 1.0 then (
      Format.eprintf "mdds: --cross-ratio must be in [0,1]@.";
      exit 124);
    let cross = cross_ratio > 0.0 in
    if cross && groups < 2 then (
      Format.eprintf "mdds: --cross-ratio requires --groups >= 2@.";
      exit 124);
    let kinds =
      match faults with
      | Some k -> k
      | None -> if cross then Schedule.cross_kinds else Schedule.all_kinds
    in
    (match explicit_schedule with
    | None -> ()
    | Some sch -> (
        match Schedule.validate ~dcs:(String.length topology) sch with
        | Ok () -> ()
        | Error m ->
            Format.eprintf "mdds: --schedule: %s@." m;
            exit 124));
    let config =
      Runner.default_config (if cross then Config.Leader else protocol)
    in
    let failures = ref 0 in
    (* Independent seeds fan out over the domain pool; reporting (and any
       shrinking, which is sequential by nature) happens afterwards in
       seed order, so the output is identical to a sequential run. *)
    let workload =
      let dcs = String.length topology in
      let base =
        if throughput then Runner.throughput_workload ~dcs ~duration
        else Runner.default_workload ~dcs ~duration
      in
      { base with Ycsb.groups; cross_ratio }
    in
    let specs =
      List.map
        (fun seed ->
          let config =
            if throughput then Runner.throughput_config ~seed config else config
          in
          Runner.spec ~config ~duration ~kinds ~workload ~seed topology)
        seeds
    in
    let reports = Runner.run_many ?schedule:explicit_schedule specs in
    List.iter2
      (fun spec report ->
        Format.printf "%a@." Runner.pp_report report;
        Format.printf "  %a" Runner.pp_timeline report;
        if Runner.failed report then (
          incr failures;
          Format.printf "  schedule: %s@." (Schedule.to_string report.schedule);
          Format.printf "  repro:    %s@." (Runner.repro report);
          List.iter (Format.printf "  trace  %s@.")
            (let tail = report.trace_tail in
             let n = List.length tail in
             List.filteri (fun i _ -> i >= n - trace_tail) tail);
          if shrink then (
            Format.printf "  shrinking...@.";
            let fails sch =
              Runner.failed (Runner.run ~schedule:sch spec)
            in
            let minimal, runs =
              Shrink.minimize ~fails report.schedule
            in
            let final = Runner.run ~schedule:minimal spec in
            Format.printf
              "  minimal schedule after %d re-runs (%d of %d events):@." runs
              (List.length minimal)
              (List.length report.schedule);
            Format.printf "%a" Schedule.pp minimal;
            Format.printf "  repro:    %s@." (Runner.repro final))))
      specs reports;
    if verbose then print_scheduler_stats ();
    if !failures > 0 then (
      Format.printf "%d of %d seeds FAILED@." !failures (List.length seeds);
      exit 1)
    else Format.printf "all %d seeds passed@." (List.length seeds)
  in
  let term =
    Term.(
      const run $ topology_arg $ protocol_arg $ seed_arg $ seeds_arg
      $ duration_arg $ faults_arg $ schedule_arg $ shrink_arg $ trace_tail_arg
      $ throughput_arg $ groups_arg $ cross_ratio_arg $ jobs_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Randomized fault-schedule runs (crashes, dirty/torn storage \
          crashes, partitions, restarts, storms, compactions, and the \
          gray failures: one-way cuts, slow nodes, flapping links, \
          duplication storms) with full oracle checking — including an \
          availability timeline with per-fault time-to-recovery and a \
          bounded-unavailability bound — and automatic schedule \
          shrinking.")
    term

(* ------------------------------------------------------------------ *)
(* mdds throughput                                                     *)

let throughput_cmd =
  let module Throughput = Mdds_harness.Throughput in
  let rates_conv =
    let parse s =
      let parts =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun r -> r <> "")
      in
      match List.map float_of_string_opt parts with
      | [] -> Error (`Msg "empty rate list")
      | l when List.for_all (function Some r -> r > 0.0 | None -> false) l ->
          Ok (List.map Option.get l)
      | _ -> Error (`Msg (Printf.sprintf "bad rate list %S (expected e.g. 10,40,160)" s))
    in
    let print ppf rs =
      Format.pp_print_string ppf
        (String.concat "," (List.map (Printf.sprintf "%g") rs))
    in
    Arg.conv (parse, print)
  in
  let rates_arg =
    let doc =
      "Comma-separated offered rates (txns per virtual second). The sweep \
       runs every rate under both modes; pick a range that straddles the \
       baseline's saturation point (about 20/s on VVV)."
    in
    Arg.(
      value
      & opt rates_conv [ 10.0; 20.0; 40.0; 80.0; 160.0 ]
      & info [ "rates" ] ~docv:"R1,R2,.." ~doc)
  in
  let tp_txns_arg =
    let doc =
      "Transactions offered per measured point (the open-loop generator \
       scales to 1e4..1e6; CI smoke uses a few hundred)."
    in
    Arg.(value & opt int 400 & info [ "n"; "txns" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    Arg.(value & opt int 8
         & info [ "batch" ] ~docv:"N" ~doc:"batch_max of the batched mode.")
  in
  let depth_arg =
    Arg.(value & opt int 4
         & info [ "depth" ] ~docv:"K"
             ~doc:"pipeline_depth of the batched mode.")
  in
  let baseline_only_arg =
    Arg.(value & flag
         & info [ "baseline-only" ]
             ~doc:"Sweep only the unbatched baseline mode.")
  in
  let epoch_arg =
    Arg.(value & opt (some float) None
         & info [ "epoch" ] ~docv:"SECONDS"
             ~doc:"Also sweep an epoch-sealed mode (PROTOCOL.md \xc2\xa711) \
                   sealing every $(docv) virtual seconds.")
  in
  let epoch_fill_arg =
    Arg.(value & opt int 64
         & info [ "epoch-fill" ] ~docv:"N"
             ~doc:"Fill bound of the epoch mode: seal early once $(docv) \
                   transactions are queued.")
  in
  let sweep_arg =
    Arg.(value & flag
         & info [ "sweep" ]
             ~doc:"Run the knob grid instead of the rate sweep: \
                   batch_max x pipeline_depth x epoch_interval x topology \
                   at one offered rate (the ext-knobs family).")
  in
  let list_conv ~name ~of_string ~ok ~to_string =
    let parse s =
      let parts =
        String.split_on_char ',' s |> List.map String.trim
        |> List.filter (fun r -> r <> "")
      in
      match List.map of_string parts with
      | [] -> Error (`Msg (Printf.sprintf "empty %s list" name))
      | l when List.for_all (function Some v -> ok v | None -> false) l ->
          Ok (List.map Option.get l)
      | _ -> Error (`Msg (Printf.sprintf "bad %s list %S" name s))
    in
    let print ppf l =
      Format.pp_print_string ppf (String.concat "," (List.map to_string l))
    in
    Arg.conv (parse, print)
  in
  let ints_conv =
    list_conv ~name:"int" ~of_string:int_of_string_opt ~ok:(fun v -> v >= 1)
      ~to_string:string_of_int
  in
  let floats0_conv =
    list_conv ~name:"float" ~of_string:float_of_string_opt
      ~ok:(fun v -> v >= 0.0) ~to_string:(Printf.sprintf "%g")
  in
  let strings_conv =
    list_conv ~name:"topology"
      ~of_string:(fun s -> Some s)
      ~ok:(fun s -> s <> "")
      ~to_string:Fun.id
  in
  let sweep_batches_arg =
    Arg.(value & opt ints_conv [ 1; 8 ]
         & info [ "sweep-batches" ] ~docv:"N1,N2,.."
             ~doc:"batch_max values of the --sweep grid (epoch cells use \
                   them as the fill bound).")
  in
  let sweep_depths_arg =
    Arg.(value & opt ints_conv [ 1; 4 ]
         & info [ "sweep-depths" ] ~docv:"K1,K2,.."
             ~doc:"pipeline_depth values of the --sweep grid.")
  in
  let sweep_epochs_arg =
    Arg.(value & opt floats0_conv [ 0.0; 0.05 ]
         & info [ "sweep-epochs" ] ~docv:"S1,S2,.."
             ~doc:"epoch_interval values of the --sweep grid (0 = batch \
                   discipline).")
  in
  let topologies_arg =
    Arg.(value & opt strings_conv [ "VVV"; "VVVOC" ]
         & info [ "topologies" ] ~docv:"T1,T2,.."
             ~doc:"Topologies of the --sweep grid.")
  in
  let sweep_rate_arg =
    Arg.(value & opt float 120.0
         & info [ "sweep-rate" ] ~docv:"R"
             ~doc:"Offered rate of every --sweep cell (txns per virtual \
                   second).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"PATH"
             ~doc:"With --sweep: also write the grid as CSV to $(docv).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"PATH"
             ~doc:"Also write the sweep as a JSON array to $(docv).")
  in
  let tp_groups_arg =
    Arg.(value & opt int 1
         & info [ "groups" ] ~docv:"N"
             ~doc:"Spread transactions round-robin over $(docv) independent \
                   transaction groups (aggregate-throughput scaling axis).")
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    output_char oc '\n';
    close_out oc;
    (* stderr, so jobs-1-vs-jobs-4 stdout diffs don't see the filenames *)
    Format.eprintf "wrote %s@." path
  in
  let run topology seed txns rates batch depth baseline_only epoch epoch_fill
      sweep sweep_batches sweep_depths sweep_epochs topologies sweep_rate csv
      groups out jobs verbose =
    Mdds_parallel.Pool.set_jobs jobs;
    if batch < 1 || depth < 1 then (
      Format.eprintf "mdds: --batch and --depth must be positive@.";
      exit 124);
    if groups < 1 then (
      Format.eprintf "mdds: --groups must be positive@.";
      exit 124);
    (match epoch with
    | Some e when e <= 0.0 ->
        Format.eprintf
          "mdds: --epoch must be positive virtual seconds (omit it to \
           disable epoch sealing)@.";
        exit 124
    | _ -> ());
    if epoch_fill < 1 then (
      Format.eprintf "mdds: --epoch-fill must be positive@.";
      exit 124);
    if List.exists (fun e -> e < 0.0) sweep_epochs then (
      Format.eprintf
        "mdds: --sweep-epochs values must be >= 0 (0 = batch discipline)@.";
      exit 124);
    if sweep then begin
      (* Knob grid: one rate, every batch x depth x epoch x topology cell. *)
      let cells =
        Throughput.knob_sweep ~seed ~groups ~topologies
          ~batch_maxes:sweep_batches ~depths:sweep_depths
          ~epoch_intervals:sweep_epochs ~rate:sweep_rate ~txns ()
      in
      Throughput.pp_knob_table Format.std_formatter cells;
      (match out with
      | None -> ()
      | Some path -> write_file path (Throughput.knob_to_json cells));
      (match csv with
      | None -> ()
      | Some path -> write_file path (Throughput.knob_to_csv cells));
      if verbose then print_scheduler_stats ();
      if
        List.exists
          (fun (_, p) -> Result.is_error p.Throughput.verified)
          cells
      then exit 1
    end
    else begin
      let modes =
        if baseline_only then [ Throughput.baseline ]
        else
          [ Throughput.baseline;
            Throughput.batched ~batch_max:batch ~pipeline_depth:depth () ]
          @
          match epoch with
          | None -> []
          | Some interval ->
              [ Throughput.epoch ~fill:epoch_fill ~interval () ]
      in
      let points =
        Throughput.sweep ~seed ~topology ~groups ~modes ~rates ~txns ()
      in
      Throughput.pp_table Format.std_formatter points;
      List.iter
        (fun mode ->
          match Throughput.saturation points mode with
          | None -> ()
          | Some p ->
              Format.printf
                "%s saturates at %.1f committed/s (offered %.0f/s)@."
                mode.Throughput.label p.Throughput.committed_per_s
                p.Throughput.rate)
        modes;
      (match out with
      | None -> ()
      | Some path -> write_file path (Throughput.to_json points));
      if verbose then print_scheduler_stats ();
      if List.exists (fun p -> Result.is_error p.Throughput.verified) points
      then exit 1
    end
  in
  let term =
    Term.(
      const run $ topology_arg $ seed_arg $ tp_txns_arg $ rates_arg $ batch_arg
      $ depth_arg $ baseline_only_arg $ epoch_arg $ epoch_fill_arg $ sweep_arg
      $ sweep_batches_arg $ sweep_depths_arg $ sweep_epochs_arg
      $ topologies_arg $ sweep_rate_arg $ csv_arg $ tp_groups_arg $ out_arg
      $ jobs_arg $ verbose_arg)
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:
         "Open-loop saturation sweep: offered-rate curves for the unbatched \
          baseline vs throughput mode (transaction batching + k-deep \
          pipelined log positions) and optionally the epoch-sealed mode \
          (--epoch, PROTOCOL.md \xc2\xa711), with commit-latency percentiles \
          and full oracle checking per point (DESIGN.md \xc2\xa714\xe2\x80\x93\xc2\xa715). \
          --sweep runs the batch x depth x epoch x topology knob grid \
          instead.")
    term

(* ------------------------------------------------------------------ *)
(* mdds figures                                                        *)

let figures_cmd =
  let ids_arg =
    let doc = "Figure ids (default: all). See 'mdds list'." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids jobs verbose =
    Mdds_parallel.Pool.set_jobs jobs;
    (try Figures.run_ids ids
     with Invalid_argument msg ->
       prerr_endline msg;
       exit 2);
    if verbose then print_scheduler_stats ()
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce figures from the paper's evaluation (§6).")
    Term.(const run $ ids_arg $ jobs_arg $ verbose_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (id, description, _) -> Printf.printf "%-8s %s\n" id description)
      Figures.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available figure reproductions.") Term.(const run $ const ())

let () =
  let doc =
    "Multi-datacenter transactional datastore simulator (Paxos vs Paxos-CP; \
     Patterson et al., VLDB 2012)."
  in
  let info = Cmd.info "mdds" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; chaos_cmd; throughput_cmd; figures_cmd; list_cmd ]))
